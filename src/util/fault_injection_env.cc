#include "util/fault_injection_env.h"

#include <algorithm>
#include <utility>

namespace unikv {

namespace {
constexpr uint64_t kReadChunk = 64 * 1024;
}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kAppend:
      return "Append";
    case FaultOp::kFlush:
      return "Flush";
    case FaultOp::kSync:
      return "Sync";
    case FaultOp::kClose:
      return "Close";
    case FaultOp::kNewWritableFile:
      return "NewWritableFile";
    case FaultOp::kNewAppendableFile:
      return "NewAppendableFile";
    case FaultOp::kRenameFile:
      return "RenameFile";
    case FaultOp::kRemoveFile:
      return "RemoveFile";
    case FaultOp::kSyncDir:
      return "SyncDir";
    case FaultOp::kNumOps:
      break;
  }
  return "Unknown";
}

/// WritableFile wrapper: routes every mutating call through the env's fault
/// gate and maintains the shadow (size, synced_size) for its file.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string fname,
                    std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    Status s = env_->CheckMutatingCall(FaultOp::kAppend, fname_, true);
    if (s.ok()) s = base_->Append(data);
    if (s.ok()) {
      MutexLock lock(&env_->mu_);
      env_->files_[fname_].size += data.size();
    }
    return s;
  }

  Status Flush() override {
    // Flush only moves data toward the OS cache; it is interceptable but
    // not a counted fault point (see header).
    Status s = env_->CheckMutatingCall(FaultOp::kFlush, fname_, false);
    if (s.ok()) s = base_->Flush();
    return s;
  }

  Status Sync() override {
    Status s = env_->CheckMutatingCall(FaultOp::kSync, fname_, true);
    if (s.ok()) s = base_->Sync();
    if (s.ok()) {
      MutexLock lock(&env_->mu_);
      FaultInjectionEnv::FileState& st = env_->files_[fname_];
      st.synced_size = st.size;
      st.ever_synced = true;
    }
    return s;
  }

  Status Close() override {
    Status s = env_->CheckMutatingCall(FaultOp::kClose, fname_, true);
    // On an injected failure the base file stays open; its destructor
    // closes it. Closing makes nothing durable, so no shadow update.
    if (s.ok()) s = base_->Close();
    return s;
  }

 private:
  FaultInjectionEnv* env_;
  std::string fname_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::FailAt(FaultOp op, const std::string& pattern,
                               uint64_t nth, bool sticky) {
  MutexLock lock(&mu_);
  rules_.push_back(FaultRule{op, pattern, nth, sticky, /*crash=*/false});
}

void FaultInjectionEnv::CrashAt(FaultOp op, const std::string& pattern,
                                uint64_t nth) {
  MutexLock lock(&mu_);
  rules_.push_back(
      FaultRule{op, pattern, nth, /*sticky=*/false, /*crash=*/true});
}

void FaultInjectionEnv::CrashAtCallIndex(uint64_t index) {
  MutexLock lock(&mu_);
  crash_at_index_ = index;
}

void FaultInjectionEnv::ClearFaults() {
  MutexLock lock(&mu_);
  rules_.clear();
  crash_at_index_ = UINT64_MAX;
}

uint64_t FaultInjectionEnv::CallCount(FaultOp op) const {
  MutexLock lock(&mu_);
  return op_counts_[static_cast<int>(op)];
}

uint64_t FaultInjectionEnv::TotalMutatingCalls() const {
  MutexLock lock(&mu_);
  return total_calls_;
}

void FaultInjectionEnv::ResetCounters() {
  MutexLock lock(&mu_);
  total_calls_ = 0;
  for (uint64_t& c : op_counts_) c = 0;
  trace_.clear();
}

void FaultInjectionEnv::EnableTrace(bool enable) {
  MutexLock lock(&mu_);
  trace_enabled_ = enable;
}

std::vector<FaultInjectionEnv::CallRecord> FaultInjectionEnv::Trace() const {
  MutexLock lock(&mu_);
  return trace_;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

void FaultInjectionEnv::TriggerCrashLocked() { crashed_ = true; }

Status FaultInjectionEnv::CheckMutatingCall(FaultOp op,
                                            const std::string& fname,
                                            bool counted) {
  MutexLock lock(&mu_);
  if (crashed_) {
    return Status::IOError(fname, "simulated crash: filesystem is frozen");
  }
  if (counted) {
    // This call's index is the pre-increment total, so trace_[i] describes
    // counted call i and CrashAtCallIndex(i) fires on exactly that call.
    const uint64_t index = total_calls_++;
    op_counts_[static_cast<int>(op)]++;
    if (trace_enabled_) trace_.push_back(CallRecord{op, fname});
    if (index == crash_at_index_) {
      TriggerCrashLocked();
      return Status::IOError(fname, "injected crash");
    }
  }
  for (FaultRule& rule : rules_) {
    if (rule.spent || rule.op != op ||
        fname.find(rule.pattern) == std::string::npos) {
      continue;
    }
    if (rule.remaining > 0) {
      rule.remaining--;
      continue;
    }
    if (rule.crash) {
      TriggerCrashLocked();
      return Status::IOError(fname, "injected crash");
    }
    if (!rule.sticky) rule.spent = true;
    return Status::IOError(fname, "injected fault");
  }
  return Status::OK();
}

std::string FaultInjectionEnv::DirOf(const std::string& fname) {
  size_t pos = fname.rfind('/');
  if (pos == std::string::npos) return "";
  return fname.substr(0, pos);
}

Status FaultInjectionEnv::ReadFileToString(const std::string& fname,
                                           uint64_t limit, std::string* out) {
  out->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = base_->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  std::string scratch(kReadChunk, '\0');
  while (out->size() < limit) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(kReadChunk, limit - out->size()));
    Slice chunk;
    s = file->Read(want, &chunk, scratch.data());
    if (!s.ok()) return s;
    if (chunk.empty()) break;
    out->append(chunk.data(), chunk.size());
  }
  return Status::OK();
}

Status FaultInjectionEnv::WriteStringToFile(const std::string& fname,
                                            const std::string& data) {
  std::unique_ptr<WritableFile> file;
  Status s = base_->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(data);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  return s;
}

Status FaultInjectionEnv::RecoverAfterCrash() {
  MutexLock lock(&mu_);
  Status result;
  auto note = [&result](const Status& s) {
    if (result.ok() && !s.ok()) result = s;
  };

  // 1. Roll back renames that never became durable, newest first, moving
  //    the file back and resurrecting any overwritten target.
  for (auto rit = rename_journal_.rbegin(); rit != rename_journal_.rend();
       ++rit) {
    if (base_->FileExists(rit->to)) {
      std::string content;
      note(ReadFileToString(rit->to, UINT64_MAX, &content));
      note(WriteStringToFile(rit->from, content));
    }
    if (rit->had_target) {
      note(WriteStringToFile(rit->to, rit->target_content));
    } else {
      (void)base_->RemoveFile(rit->to);  // May already be gone; ignore.
    }
    files_.erase(rit->to);
    if (rit->target_tracked) files_[rit->to] = rit->target_state;
    files_.erase(rit->from);
    if (rit->from_tracked) files_[rit->from] = rit->from_state;
  }
  rename_journal_.clear();

  // 2. Delete files that were created but never synced; truncate the rest
  //    to their durable prefix (read + rewrite through the base Env, since
  //    Env has no truncate).
  for (auto it = files_.begin(); it != files_.end();) {
    const std::string& fname = it->first;
    FileState& st = it->second;
    if (!st.ever_synced) {
      (void)base_->RemoveFile(fname);  // Ignore NotFound.
      it = files_.erase(it);
      continue;
    }
    uint64_t cur = 0;
    if (base_->GetFileSize(fname, &cur).ok() && cur > st.synced_size) {
      std::string prefix;
      note(ReadFileToString(fname, st.synced_size, &prefix));
      note(WriteStringToFile(fname, prefix));
    }
    st.size = st.synced_size;
    ++it;
  }

  crashed_ = false;
  return result;
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  return base_->NewSequentialFile(fname, result);
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  return base_->NewRandomAccessFile(fname, result);
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = CheckMutatingCall(FaultOp::kNewWritableFile, fname, true);
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> base_file;
  s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) return s;
  {
    MutexLock lock(&mu_);
    // Recreation truncates: the shadow starts fresh, and like any new file
    // it survives a crash only once synced.
    files_[fname] = FileState{};
  }
  result->reset(new FaultWritableFile(this, fname, std::move(base_file)));
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = CheckMutatingCall(FaultOp::kNewAppendableFile, fname, true);
  if (!s.ok()) return s;
  // A pre-existing file that was never written through this wrapper is
  // treated as fully durable at its current size.
  bool pre_existing = base_->FileExists(fname);
  uint64_t pre_size = 0;
  if (pre_existing) (void)base_->GetFileSize(fname, &pre_size);  // 0 if unknowable.
  std::unique_ptr<WritableFile> base_file;
  s = base_->NewAppendableFile(fname, &base_file);
  if (!s.ok()) return s;
  {
    MutexLock lock(&mu_);
    if (files_.find(fname) == files_.end()) {
      FileState st;
      if (pre_existing) {
        st.size = pre_size;
        st.synced_size = pre_size;
        st.ever_synced = true;
      }
      files_[fname] = st;
    }
  }
  result->reset(new FaultWritableFile(this, fname, std::move(base_file)));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  Status s = CheckMutatingCall(FaultOp::kRemoveFile, fname, true);
  if (!s.ok()) return s;
  s = base_->RemoveFile(fname);
  if (s.ok()) {
    MutexLock lock(&mu_);
    files_.erase(fname);
    // A removed file can no longer participate in rename rollback.
    for (auto it = rename_journal_.begin(); it != rename_journal_.end();) {
      if (it->to == fname || it->from == fname) {
        it = rename_journal_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return s;
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  // Directory creation/removal is not an enumerated fault point (it happens
  // once per DB lifetime), but a frozen filesystem still rejects it.
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return Status::IOError(dirname, "simulated crash: filesystem is frozen");
    }
  }
  return base_->CreateDir(dirname);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dirname) {
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return Status::IOError(dirname, "simulated crash: filesystem is frozen");
    }
  }
  return base_->RemoveDir(dirname);
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  // Rules and the trace see "src -> target" so patterns can match either.
  Status s = CheckMutatingCall(FaultOp::kRenameFile, src + " -> " + target,
                               true);
  if (!s.ok()) return s;
  RenameRecord rec;
  rec.from = src;
  rec.to = target;
  rec.had_target = base_->FileExists(target);
  if (rec.had_target) {
    s = ReadFileToString(target, UINT64_MAX, &rec.target_content);
    if (!s.ok()) return s;
  }
  s = base_->RenameFile(src, target);
  if (!s.ok()) return s;
  MutexLock lock(&mu_);
  auto from_it = files_.find(src);
  rec.from_tracked = from_it != files_.end();
  if (rec.from_tracked) rec.from_state = from_it->second;
  auto target_it = files_.find(target);
  rec.target_tracked = target_it != files_.end();
  if (rec.target_tracked) rec.target_state = target_it->second;
  // The shadow follows the file to its new name.
  files_.erase(target);
  if (rec.from_tracked) {
    files_[target] = rec.from_state;
    files_.erase(src);
  }
  rename_journal_.push_back(std::move(rec));
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dirname) {
  Status s = CheckMutatingCall(FaultOp::kSyncDir, dirname, true);
  if (!s.ok()) return s;
  s = base_->SyncDir(dirname);
  if (s.ok()) {
    MutexLock lock(&mu_);
    // Renames inside this directory are now durable.
    for (auto it = rename_journal_.begin(); it != rename_journal_.end();) {
      if (DirOf(it->to) == dirname) {
        it = rename_journal_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return s;
}

uint64_t FaultInjectionEnv::NowMicros() { return base_->NowMicros(); }

void FaultInjectionEnv::SleepForMicroseconds(int micros) {
  base_->SleepForMicroseconds(micros);
}

}  // namespace unikv
