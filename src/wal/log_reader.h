#ifndef UNIKV_WAL_LOG_READER_H_
#define UNIKV_WAL_LOG_READER_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"
#include "wal/log_format.h"

namespace unikv {

class SequentialFile;

namespace log {

/// Reads records written by log::Writer, verifying checksums and skipping
/// corrupted regions (reporting them to an optional Reporter).
class Reader {
 public:
  /// Interface for reporting corruption.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    /// Some data was corrupted; `bytes` is the approximate dropped size.
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  /// If checksum is true, verify record checksums. *file must stay live.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum);
  ~Reader();

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next record into *record (may point into *scratch).
  /// Returns false at EOF.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extend record types with the following special values.
  enum {
    kEof = kMaxRecordType + 1,
    kBadRecord = kMaxRecordType + 2,
  };

  // Return type, or one of the preceding special values.
  unsigned int ReadPhysicalRecord(Slice* result);

  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  char* const backing_store_;
  Slice buffer_;
  bool eof_;  // Last Read() indicated EOF by returning < kBlockSize.
};

}  // namespace log
}  // namespace unikv

#endif  // UNIKV_WAL_LOG_READER_H_
