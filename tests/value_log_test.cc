// Value-log tests: pointer codec, record round trips via the cache,
// span reads, sequential scans, and torn-tail handling.

#include "vlog/value_log.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/filename.h"
#include "util/env.h"
#include "util/random.h"

namespace unikv {
namespace {

TEST(ValuePointer, Codec) {
  ValuePointer ptr;
  ptr.partition = 7;
  ptr.log_number = 123456789;
  ptr.offset = 0xDEADBEEFCAFEull;
  ptr.size = 4096;
  std::string encoded;
  ptr.EncodeTo(&encoded);

  ValuePointer decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input));
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(ptr, decoded);

  // Truncated encodings fail cleanly.
  for (size_t len = 0; len < encoded.size(); len++) {
    ValuePointer bad;
    Slice trunc(encoded.data(), len);
    EXPECT_FALSE(bad.DecodeFrom(&trunc)) << len;
  }
}

class ValueLogTest : public testing::Test {
 protected:
  ValueLogTest() : env_(NewMemEnv()) {
    env_->CreateDir("/db");
    cache_ = std::make_unique<ValueLogCache>(env_.get(), "/db");
  }

  std::unique_ptr<ValueLogWriter> NewWriter(uint64_t log_number) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(
        env_->NewWritableFile(ValueLogFileName("/db", log_number), &file)
            .ok());
    return std::make_unique<ValueLogWriter>(std::move(file), 0, log_number);
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<ValueLogCache> cache_;
};

TEST_F(ValueLogTest, WriteAndFetch) {
  auto writer = NewWriter(5);
  std::vector<ValuePointer> ptrs;
  for (int i = 0; i < 100; i++) {
    ValuePointer ptr;
    ASSERT_TRUE(writer
                    ->Add("key" + std::to_string(i),
                          "value" + std::to_string(i), &ptr)
                    .ok());
    EXPECT_EQ(5u, ptr.log_number);
    ptrs.push_back(ptr);
  }
  ASSERT_TRUE(writer->Flush().ok());

  for (int i = 0; i < 100; i++) {
    std::string value, key;
    ASSERT_TRUE(cache_->Get(ptrs[i], &value, &key).ok());
    EXPECT_EQ("value" + std::to_string(i), value);
    EXPECT_EQ("key" + std::to_string(i), key);
  }
}

TEST_F(ValueLogTest, OffsetsAreContiguous) {
  auto writer = NewWriter(1);
  ValuePointer a, b;
  ASSERT_TRUE(writer->Add("k1", "v1", &a).ok());
  ASSERT_TRUE(writer->Add("k2", "v2", &b).ok());
  EXPECT_EQ(0u, a.offset);
  EXPECT_EQ(a.size, b.offset);
  EXPECT_EQ(writer->CurrentOffset(), b.offset + b.size);
}

TEST_F(ValueLogTest, LargeAndEmptyValues) {
  auto writer = NewWriter(2);
  std::string big(1 << 20, 'B');
  ValuePointer p_big, p_empty;
  ASSERT_TRUE(writer->Add("big", big, &p_big).ok());
  ASSERT_TRUE(writer->Add("empty", "", &p_empty).ok());
  writer->Flush();
  std::string value;
  ASSERT_TRUE(cache_->Get(p_big, &value).ok());
  EXPECT_EQ(big, value);
  ASSERT_TRUE(cache_->Get(p_empty, &value).ok());
  EXPECT_EQ("", value);
}

TEST_F(ValueLogTest, SpanRead) {
  auto writer = NewWriter(3);
  std::vector<ValuePointer> ptrs(10);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        writer->Add("k" + std::to_string(i), std::string(100, 'a' + i),
                    &ptrs[i]).ok());
  }
  writer->Flush();
  std::string span;
  uint64_t begin = ptrs[2].offset;
  uint64_t end = ptrs[7].offset + ptrs[7].size;
  ASSERT_TRUE(cache_->GetSpan(3, begin, end - begin, &span).ok());
  // Each record can be decoded at its relative offset.
  for (int i = 2; i <= 7; i++) {
    Slice record(span.data() + (ptrs[i].offset - begin), ptrs[i].size);
    Slice key, value;
    ASSERT_TRUE(DecodeValueRecord(record, &key, &value).ok());
    EXPECT_EQ("k" + std::to_string(i), key.ToString());
    EXPECT_EQ(std::string(100, 'a' + i), value.ToString());
  }
}

TEST_F(ValueLogTest, CorruptRecordDetected) {
  auto writer = NewWriter(4);
  ValuePointer ptr;
  ASSERT_TRUE(writer->Add("key", "value", &ptr).ok());
  writer->Flush();

  // Corrupt a byte of the stored record.
  std::string fname = ValueLogFileName("/db", 4);
  uint64_t size;
  env_->GetFileSize(fname, &size);
  std::string contents(size, 0);
  {
    std::unique_ptr<RandomAccessFile> reader;
    env_->NewRandomAccessFile(fname, &reader);
    Slice data;
    reader->Read(0, size, &data, contents.data());
    contents.assign(data.data(), data.size());
  }
  contents[size / 2] ^= 0x10;
  std::unique_ptr<WritableFile> w;
  env_->NewWritableFile(fname, &w);
  w->Append(contents);
  w->Close();
  cache_->Evict(0, 4);

  std::string value;
  Status s = cache_->Get(ptr, &value);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(ValueLogTest, SequentialScanAndTornTail) {
  auto writer = NewWriter(6);
  for (int i = 0; i < 50; i++) {
    ValuePointer ptr;
    ASSERT_TRUE(
        writer->Add("k" + std::to_string(i), "v" + std::to_string(i), &ptr)
            .ok());
  }
  writer->Flush();
  std::string fname = ValueLogFileName("/db", 6);

  int count = 0;
  ASSERT_TRUE(ScanValueLog(env_.get(), fname,
                           [&](uint64_t, uint32_t, const Slice& key,
                               const Slice& value) {
                             EXPECT_EQ("k" + std::to_string(count),
                                       key.ToString());
                             EXPECT_EQ("v" + std::to_string(count),
                                       value.ToString());
                             count++;
                           })
                  .ok());
  EXPECT_EQ(50, count);

  // Truncate mid-record: the scan stops at the torn tail without error.
  uint64_t size;
  env_->GetFileSize(fname, &size);
  std::string contents(size, 0);
  {
    std::unique_ptr<RandomAccessFile> reader;
    env_->NewRandomAccessFile(fname, &reader);
    Slice data;
    reader->Read(0, size, &data, contents.data());
    contents.assign(data.data(), data.size());
  }
  contents.resize(size - 3);
  std::unique_ptr<WritableFile> w;
  env_->NewWritableFile(fname, &w);
  w->Append(contents);
  w->Close();

  count = 0;
  ASSERT_TRUE(ScanValueLog(env_.get(), fname,
                           [&](uint64_t, uint32_t, const Slice&,
                               const Slice&) { count++; })
                  .ok());
  EXPECT_EQ(49, count);
}

TEST_F(ValueLogTest, MissingLogFileSurfacesError) {
  ValuePointer ptr;
  ptr.log_number = 999;
  ptr.size = 10;
  std::string value;
  EXPECT_FALSE(cache_->Get(ptr, &value).ok());
}

TEST_F(ValueLogTest, BinaryKeysAndValues) {
  auto writer = NewWriter(7);
  std::string key("\0\xff\n", 3);
  std::string value("\0\0\0\0", 4);
  ValuePointer ptr;
  ASSERT_TRUE(writer->Add(key, value, &ptr).ok());
  writer->Flush();
  std::string got_value, got_key;
  ASSERT_TRUE(cache_->Get(ptr, &got_value, &got_key).ok());
  EXPECT_EQ(key, got_key);
  EXPECT_EQ(value, got_value);
}

}  // namespace
}  // namespace unikv
