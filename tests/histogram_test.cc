#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace unikv {
namespace {

TEST(Histogram, EmptyStats) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0.0, h.Average());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(1u, h.Count());
  EXPECT_DOUBLE_EQ(42.0, h.Average());
  EXPECT_EQ(42.0, h.Min());
  EXPECT_EQ(42.0, h.Max());
  EXPECT_LE(h.Percentile(50), 42.0 + 5.0);
}

TEST(Histogram, UniformValuesPercentiles) {
  Histogram h;
  for (int i = 1; i <= 10000; i++) {
    h.Add(i);
  }
  EXPECT_EQ(10000u, h.Count());
  EXPECT_NEAR(5000.0, h.Average(), 10.0);
  // Bucketed percentiles are approximate; allow 10% slop.
  EXPECT_NEAR(5000.0, h.Percentile(50), 600.0);
  EXPECT_NEAR(9900.0, h.Percentile(99), 1000.0);
  EXPECT_EQ(1.0, h.Min());
  EXPECT_EQ(10000.0, h.Max());
}

TEST(Histogram, Merge) {
  Histogram a, b;
  for (int i = 0; i < 100; i++) a.Add(10);
  for (int i = 0; i < 100; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(200u, a.Count());
  EXPECT_NEAR(505.0, a.Average(), 1.0);
  EXPECT_EQ(10.0, a.Min());
  EXPECT_EQ(1000.0, a.Max());
}

TEST(Histogram, EmptyPercentilesAreZero) {
  // Regression: an empty histogram used to clamp percentiles to the min_
  // sentinel (1e200) instead of reporting 0.
  Histogram h;
  EXPECT_EQ(0.0, h.Percentile(50));
  EXPECT_EQ(0.0, h.Percentile(99.9));
  EXPECT_EQ(0.0, h.Median());
}

TEST(Histogram, SingleValueAllPercentiles) {
  Histogram h;
  h.Add(42);
  // With one sample every percentile clamps to that sample.
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(0.1));
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(50));
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(99.9));
}

TEST(Histogram, MergeDisjointRanges) {
  Histogram lo, hi;
  for (int i = 0; i < 100; i++) lo.Add(10);
  for (int i = 0; i < 100; i++) hi.Add(100000);
  lo.Merge(hi);
  EXPECT_EQ(200u, lo.Count());
  EXPECT_EQ(10.0, lo.Min());
  EXPECT_EQ(100000.0, lo.Max());
  // The low half of the mass sits in the low range, the high half in the
  // high range, with nothing in between.
  EXPECT_LE(lo.Percentile(25), 20.0);
  EXPECT_GE(lo.Percentile(95), 50000.0);
  EXPECT_NEAR(50005.0, lo.Average(), 1.0);
  // Merging an empty histogram changes nothing.
  Histogram empty;
  lo.Merge(empty);
  EXPECT_EQ(200u, lo.Count());
  EXPECT_EQ(10.0, lo.Min());
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(0u, h.Count());
  h.Add(7);
  EXPECT_EQ(7.0, h.Max());
}

TEST(Histogram, HugeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Add(1e12);
  h.Add(1);
  EXPECT_EQ(2u, h.Count());
  EXPECT_EQ(1e12, h.Max());
  EXPECT_GE(h.Percentile(99), 1.0);
}

TEST(Histogram, ToStringContainsSummary) {
  Histogram h;
  for (int i = 0; i < 10; i++) h.Add(i);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=10"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(Random, DeterministicGivenSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Random, UniformStaysInRange) {
  Random rnd(99);
  for (int i = 0; i < 10000; i++) {
    uint32_t v = rnd.Uniform(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Zipfian, SkewsTowardLowIds) {
  ZipfianGenerator zipf(10000, 0.99, 7);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; i++) {
    if (zipf.Next() < 100) low++;  // Hottest 1% of the key space.
  }
  // Under zipf(0.99), the top 1% should draw far more than 1% of
  // accesses (typically ~35-60%).
  EXPECT_GT(low, total / 5);
}

TEST(Zipfian, StaysInRange) {
  ZipfianGenerator zipf(1000, 0.99, 11);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

}  // namespace
}  // namespace unikv
