#include "table/block_builder.h"

#include <cassert>

#include "util/coding.h"

namespace unikv {

// Block format:
//   entry := shared(varint32) non_shared(varint32) value_len(varint32)
//            key_delta value
//   trailer := restarts[num_restarts] (fixed32 each) num_restarts(fixed32)

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval), counter_(0), finished_(false) {
  assert(restart_interval_ >= 1);
  restarts_.push_back(0);  // First restart point is at offset 0.
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return (buffer_.size() + restarts_.size() * sizeof(uint32_t) +
          sizeof(uint32_t));
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) {
    PutFixed32(&buffer_, restart);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  Slice last_key_piece(last_key_);
  assert(!finished_);
  assert(counter_ <= restart_interval_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    // See how much sharing to do with the previous key.
    const size_t min_length = std::min(last_key_piece.size(), key.size());
    while ((shared < min_length) && (last_key_piece[shared] == key[shared])) {
      shared++;
    }
  } else {
    // Restart compression.
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));

  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  assert(Slice(last_key_) == key);
  counter_++;
}

}  // namespace unikv
