#ifndef UNIKV_INDEX_HASH_INDEX_H_
#define UNIKV_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace unikv {

/// The UniKV lightweight two-level hash index over the UnsortedStore.
///
/// Placement combines cuckoo-style multi-bucket candidates with chained
/// overflow (paper §Hash indexing):
///  * `num_hashes` hash functions h_1..h_n give each key n candidate
///    buckets; insertion fills the first empty inline slot probing
///    h_1 .. h_n.
///  * If all candidates are occupied, an overflow entry is prepended to
///    the chain of bucket h_n(key) % N (newest first).
///  * Every entry is 8 bytes: <keyTag(2B), tableId(2B), next(4B)>, where
///    keyTag is the top 16 bits of an independent hash h_{n+1}(key) used
///    to filter entries during lookup, and tableId identifies the
///    UnsortedStore table holding the key.
///
/// Lookup scans buckets h_n .. h_1, each bucket's overflow chain (newest
/// first) before its inline slot, returning candidate table ids in
/// newest-to-oldest order. keyTag collisions make candidates a superset;
/// the caller disambiguates by reading the actual key from the table.
///
/// Entries are never removed individually: the whole index is Clear()ed
/// when the UnsortedStore is merged into the SortedStore. Thread safety:
/// single writer; concurrent readers must be excluded externally (the DB
/// holds its mutex around index access — operations are in-memory and
/// cheap).
class HashIndex {
 public:
  /// Sizes the bucket array for `expected_entries` at ~80 % inline
  /// utilization, per the paper's memory analysis.
  explicit HashIndex(size_t expected_entries, int num_hashes = 2);

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  /// Records that `user_key`'s newest version lives in table `table_id`.
  void Insert(const Slice& user_key, uint16_t table_id);

  /// Appends candidate table ids (newest first) that may hold `user_key`.
  void Lookup(const Slice& user_key, std::vector<uint16_t>* candidates) const;

  /// Drops all entries (after an UnsortedStore -> SortedStore merge).
  void Clear();

  uint64_t NumEntries() const { return num_entries_; }
  size_t NumBuckets() const { return buckets_.size(); }
  /// Bytes consumed by buckets plus overflow entries.
  size_t MemoryUsage() const;
  /// Fraction of inline bucket slots occupied.
  double InlineUtilization() const;
  uint64_t NumOverflowEntries() const { return overflow_.size(); }

  // --- Checkpointing (crash consistency, paper §Crash Consistency) ---

  /// Serializes the whole index (buckets + overflow pool) to *dst.
  void EncodeTo(std::string* dst) const;
  /// Restores the index from an EncodeTo() image.
  Status DecodeFrom(Slice input);

 private:
  static constexpr uint32_t kNoOverflow = 0xFFFFFFFFu;
  static constexpr uint16_t kEmptyTable = 0xFFFFu;

  struct Bucket {
    uint16_t key_tag = 0;
    uint16_t table_id = kEmptyTable;  // kEmptyTable means inline slot empty.
    uint32_t overflow_head = kNoOverflow;
  };

  struct OverflowEntry {
    uint16_t key_tag = 0;
    uint16_t table_id = 0;
    uint32_t next = kNoOverflow;
  };

  size_t BucketFor(const Slice& key, int hash_idx) const;
  uint16_t KeyTag(const Slice& key) const;

  int num_hashes_;
  uint64_t num_entries_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<OverflowEntry> overflow_;
};

}  // namespace unikv

#endif  // UNIKV_INDEX_HASH_INDEX_H_
