file(REMOVE_RECURSE
  "CMakeFiles/db_store_behavior_test.dir/db_store_behavior_test.cc.o"
  "CMakeFiles/db_store_behavior_test.dir/db_store_behavior_test.cc.o.d"
  "db_store_behavior_test"
  "db_store_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_store_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
