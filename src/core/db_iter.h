#ifndef UNIKV_CORE_DB_ITER_H_
#define UNIKV_CORE_DB_ITER_H_

#include "core/dbformat.h"
#include "core/iterator.h"

namespace unikv {

class ValueLogCache;

/// An iterator over user keys layered on an internal-key iterator: hides
/// sequence numbers and tombstones, exposes only the newest visible
/// version of each key, and transparently resolves SortedStore value
/// pointers through the value-log cache.
class DBIter : public Iterator {
 public:
  /// Takes ownership of `internal`. `vlog` may be null when KV separation
  /// is disabled. If `readahead`, issues OS readahead hints for pointer
  /// values as the iterator advances (paper scan optimization).
  DBIter(const InternalKeyComparator& icmp, Iterator* internal,
         SequenceNumber sequence, ValueLogCache* vlog, bool readahead);
  ~DBIter() override;

  bool Valid() const override { return valid_; }
  void Seek(const Slice& target) override;
  void SeekToFirst() override;
  void SeekToLast() override;
  void Next() override;
  void Prev() override;

  Slice key() const override;
  /// The user value; pointer entries are fetched from the value log on
  /// first access and memoized for the current position.
  Slice value() const override;
  Status status() const override;

  // --- Raw access used by the optimized Scan() path ---

  /// Type of the current raw entry (kTypeValue or kTypeValuePointer).
  ValueType raw_type() const;
  /// The unresolved value bytes (inline value or encoded ValuePointer).
  Slice raw_value() const;

 private:
  enum Direction { kForward, kReverse };

  void FindNextUserEntry(bool skipping, std::string* skip);
  void FindPrevUserEntry();
  bool ParseKey(ParsedInternalKey* key);

  void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }
  void ClearSavedValue() {
    if (saved_value_.capacity() > 1048576) {
      std::string empty;
      std::swap(empty, saved_value_);
    } else {
      saved_value_.clear();
    }
  }

  void MaybeReadahead() const;

  const InternalKeyComparator icmp_;
  Iterator* const iter_;
  const SequenceNumber sequence_;
  ValueLogCache* const vlog_;
  const bool readahead_;

  Status status_;
  std::string saved_key_;    // == current key when direction_ == kReverse
  std::string saved_value_;  // == current raw value when kReverse
  ValueType saved_type_ = kTypeValue;
  Direction direction_ = kForward;
  bool valid_ = false;

  mutable bool value_resolved_ = false;
  mutable std::string resolved_value_;
  mutable Status resolve_status_;
};

}  // namespace unikv

#endif  // UNIKV_CORE_DB_ITER_H_
